package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// goldenLoader is shared across the golden tests so the stdlib is
// type-checked once per `go test` process, not once per analyzer.
// The golden tests therefore must not run in parallel.
var goldenLoader = NewLoader(true)

// wantSpec is one expectation parsed from a `// want` comment:
// every finding on its line must match some want, and every want must
// match at least one finding. `// want:+N` shifts the expectation N
// lines down (for findings on lines that cannot carry a trailing
// comment, like the //det:ignore directives themselves).
type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var (
	wantLineRe = regexp.MustCompile("want(:([+-]?[0-9]+))?((?:\\s+(?:`[^`]*`|\"[^\"]*\"))+)")
	wantArgRe  = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")
)

// collectWants extracts every want expectation from the comments of
// pkgs.
func collectWants(t *testing.T, pkgs []*Package) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantLineRe.FindAllStringSubmatch(c.Text, -1) {
						offset := 0
						if m[2] != "" {
							n, err := strconv.Atoi(m[2])
							if err != nil {
								t.Fatalf("%s:%d: bad want offset %q", pos.Filename, pos.Line, m[2])
							}
							offset = n
						}
						for _, arg := range wantArgRe.FindAllString(m[3], -1) {
							pat := arg[1 : len(arg)-1]
							if strings.HasPrefix(arg, `"`) {
								unq, err := strconv.Unquote(arg)
								if err != nil {
									t.Fatalf("%s:%d: bad want pattern %s", pos.Filename, pos.Line, arg)
								}
								pat = unq
							}
							re, err := regexp.Compile(pat)
							if err != nil {
								t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
							}
							wants = append(wants, &wantSpec{
								file: pos.Filename,
								line: pos.Line + offset,
								re:   re,
								raw:  arg,
							})
						}
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads the testdata package at dir with loader, runs
// analyzers over it, and checks findings against want expectations
// both ways.
func runGolden(t *testing.T, loader *Loader, dir string, analyzers []*Analyzer) {
	t.Helper()
	pkgs, err := loader.Load(true, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	findings := Run(pkgs, analyzers)
	wants := collectWants(t, pkgs)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %s", w.file, w.line, w.raw)
		}
	}
}

func TestWallclockGolden(t *testing.T) {
	runGolden(t, goldenLoader, filepath.Join("testdata", "src", "wallclock"), []*Analyzer{Wallclock})
}

func TestUnseededRandGolden(t *testing.T) {
	runGolden(t, goldenLoader, filepath.Join("testdata", "src", "unseededrand"), []*Analyzer{UnseededRand})
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, goldenLoader, filepath.Join("testdata", "src", "maporder"), []*Analyzer{MapOrder})
}

func TestGoroutineGolden(t *testing.T) {
	runGolden(t, goldenLoader, filepath.Join("testdata", "src", "goroutine"), []*Analyzer{Goroutine})
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, goldenLoader, filepath.Join("testdata", "src", "hotalloc"), []*Analyzer{HotAlloc})
}

// TestIgnoreGolden proves the suppression contract: a reasoned
// directive silences the next line, a reason-less directive is itself
// an error and suppresses nothing, unknown analyzer names are errors,
// and stale directives are errors.
func TestIgnoreGolden(t *testing.T) {
	runGolden(t, goldenLoader, filepath.Join("testdata", "src", "ignores"), []*Analyzer{UnseededRand})
}

// TestDocsGolden runs the lintdocs analyzer through a parse-only
// loader, the mode cmd/lintdocs uses.
func TestDocsGolden(t *testing.T) {
	runGolden(t, NewLoader(false), filepath.Join("testdata", "src", "docs"), []*Analyzer{Docs})
}

// TestWallclockScope pins the command exemption: cmd/ and examples/
// time the simulator itself and may read the wall clock; simulation
// packages may not.
func TestWallclockScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/cmd/tdpipe-sim":    false,
		"repro/examples/fleet":    false,
		"repro/internal/fleet":    true,
		"repro/internal/sim":      true,
		"repro":                   true,
		"repro/internal/analysis": true,
	} {
		if got := Wallclock.Scope(&Package{ImportPath: path}); got != want {
			t.Errorf("Wallclock.Scope(%s) = %v, want %v", path, got, want)
		}
	}
}

// TestGoroutineScope pins the fabric carve-outs: internal/rpc is out
// of scope wholesale; everything else is in scope (parallel.go is a
// per-file exemption inside the analyzer).
func TestGoroutineScope(t *testing.T) {
	if Goroutine.Scope(&Package{ImportPath: "repro/internal/rpc"}) {
		t.Error("internal/rpc must be exempt from the goroutine analyzer")
	}
	if !Goroutine.Scope(&Package{ImportPath: "repro/internal/fleet"}) {
		t.Error("internal/fleet must be in goroutine scope")
	}
}

// TestLoaderTypeChecksRealPackage loads a real simulation package
// with full type resolution, the configuration cmd/detlint runs.
func TestLoaderTypeChecksRealPackage(t *testing.T) {
	pkgs, err := goldenLoader.Load(true, filepath.Join("..", "sim"))
	if err != nil {
		t.Fatalf("load internal/sim: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.Info == nil {
		t.Fatal("package not type-checked")
	}
	if p.ImportPath != "repro/internal/sim" {
		t.Errorf("import path = %q, want repro/internal/sim", p.ImportPath)
	}
	if len(hotFuncs(p)) == 0 {
		t.Error("internal/sim should carry //det:hotpath annotations")
	}
}

// TestRegistryCoversDetlint pins that every detlint analyzer is
// registered (so //det:ignore validation knows its name) and names
// are unique.
func TestRegistryCoversDetlint(t *testing.T) {
	known := make(map[string]bool)
	for _, a := range Registry() {
		if known[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		known[a.Name] = true
	}
	for _, a := range Detlint() {
		if !known[a.Name] {
			t.Errorf("detlint analyzer %q missing from Registry", a.Name)
		}
	}
}
