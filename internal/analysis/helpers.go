package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression
// invokes, or nil for builtins, conversions, and indirect calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// builtinName returns the name of the builtin a call invokes ("make",
// "append", ...) or "" when the callee is not a builtin.
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// baseObject peels an lvalue-ish expression (x, x.f, x[i], *x, (x))
// down to the object of its base identifier or selected field.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			return info.ObjectOf(x.Sel)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprName renders a short display name for an expression (ident or
// one-level selector); fallback "expression".
func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "expression"
}

// isPkgFunc reports whether fn is a package-level function (not a
// method) of the package with import path pkgPath.
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// mentionsObject reports whether e contains an identifier resolving
// to obj.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
