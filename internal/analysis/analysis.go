// Package analysis is the repo's in-tree static-analysis framework:
// a set of type-aware analyzers over go/ast + go/types (stdlib only,
// no external linter) that enforce the simulator's determinism
// contract at compile time instead of at test time. The invariants —
// no wall clock or process-global randomness in simulation packages,
// no concurrency outside the parallel fabric, no order-sensitive map
// iteration, no allocations in //det:hotpath functions — are exactly
// the properties the determinism and chaos suites assert after the
// fact; the analyzers catch the violating line before it ships a
// symptom. cmd/detlint drives the determinism set; cmd/lintdocs
// drives the Docs analyzer through the same loader.
//
// Suppressions are scoped and audited: `//det:ignore <analyzer>
// <reason>` on (or immediately above) the offending line silences
// that analyzer there — the reason is mandatory, unknown analyzer
// names are findings, and a suppression that suppresses nothing is
// itself a finding, so escape hatches cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic anchored to a source position.
type Finding struct {
	// Pos locates the finding (filename, line, column).
	Pos token.Position
	// Analyzer names the analyzer that produced the finding (or
	// "ignore" for suppression-syntax findings).
	Analyzer string
	// Message states the violated invariant and the fix direction.
	Message string
}

// String renders the finding in the canonical
// "file:line: [analyzer] message" form that make detlint prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass is one analyzer's view of one package: the loaded package, the
// //det:hotpath-marked functions, and a report sink.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Hot lists the function declarations marked //det:hotpath in
	// this package, in file order.
	Hot []*ast.FuncDecl

	analyzer string
	sink     *[]Finding
}

// Reportf records a finding at pos under the running analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one machine-checked invariant: a name (the //det:ignore
// key), a scope predicate selecting the packages it governs, and a
// Run function that walks one package and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in findings and //det:ignore
	// directives.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// NeedTypes marks analyzers that require go/types resolution;
	// they are skipped (never silently half-run) in parse-only loads.
	NeedTypes bool
	// Scope restricts the analyzer to some packages; nil means every
	// loaded package.
	Scope func(*Package) bool
	// Run walks one package and reports findings on the pass.
	Run func(*Pass)
}

// Registry lists every analyzer the framework knows, across all
// front ends. //det:ignore directives are validated against this set,
// so a suppression for a misspelled analyzer is a finding no matter
// which linter encounters it.
func Registry() []*Analyzer {
	return []*Analyzer{Wallclock, UnseededRand, MapOrder, Goroutine, HotAlloc, Docs}
}

// Detlint returns the determinism and hot-path analyzer set that
// cmd/detlint (and `make detlint`) runs.
func Detlint() []*Analyzer {
	return []*Analyzer{Wallclock, UnseededRand, MapOrder, Goroutine, HotAlloc}
}

// Run executes analyzers over pkgs, applies //det:ignore
// suppressions, audits the suppressions themselves (mandatory reason,
// known analyzer, actually suppressing something), and returns the
// surviving findings sorted by file, line and analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, pkg := range pkgs {
		hot := hotFuncs(pkg)
		for _, a := range analyzers {
			if a.NeedTypes && pkg.Info == nil {
				continue
			}
			if a.Scope != nil && !a.Scope(pkg) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, Hot: hot, analyzer: a.Name, sink: &raw})
		}
	}
	findings := applyIgnores(pkgs, analyzers, raw)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}

// hotpathDirective is the comment marking a function whose body the
// HotAlloc analyzer holds allocation-free.
const hotpathDirective = "//det:hotpath"

// hotFuncs collects the //det:hotpath-marked function declarations of
// pkg (the directive appears on its own line in the doc comment).
func hotFuncs(pkg *Package) []*ast.FuncDecl {
	var hot []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
					hot = append(hot, fd)
					break
				}
			}
		}
	}
	return hot
}

// funcDisplayName renders a method as Recv.Name and a function as
// Name, for findings that cite the enclosing hot function.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
