package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body does something
// order-sensitive — appending to a slice that outlives the loop with
// no later sort, writing output, concatenating onto an outer string,
// or feeding an internal/metrics merge — the classic silent
// byte-identity killer. Order-independent bodies (commutative sums,
// map writes, deletes) pass, and the sanctioned collect-keys-then-
// sort idiom passes because the later sort is detected.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "flag order-sensitive work done in map iteration order",
	NeedTypes: true,
	Run:       runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The enclosing function body is the scan range for
			// "sorted later": a sort anywhere after the loop, still
			// inside the function, legitimizes the collect.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.Pkg.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRangeBody(pass, fd.Body, rs)
					}
				}
				return true
			})
		}
	}
}

// printFuncs are the fmt entry points that emit output directly.
var printFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// checkMapRangeBody reports order-sensitive statements inside one
// map-range body. encl is the enclosing function body, scanned for a
// later sort that would legitimize collected slices.
func checkMapRangeBody(pass *Pass, encl *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil {
				if isPkgFunc(fn, "fmt") && printFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"fmt.%s writes output inside a map range: iteration order is nondeterministic; collect and sort keys first",
						fn.Name())
				}
				if strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
					pass.Reportf(n.Pos(),
						"feeds metrics.%s inside a map range: merge order follows nondeterministic map iteration; iterate sorted keys",
						fn.Name())
				}
			}
			if builtinName(info, n.Fun) == "append" && len(n.Args) > 0 {
				obj := baseObject(info, n.Args[0])
				if obj != nil && !declaredWithin(obj, rs) && !sortedAfter(info, encl, rs, obj) {
					pass.Reportf(n.Pos(),
						"appends to %s in map iteration order with no later sort; collect and sort keys, or sort %s before use",
						obj.Name(), obj.Name())
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				obj := baseObject(info, n.Lhs[0])
				if obj == nil || declaredWithin(obj, rs) {
					return true
				}
				if t := info.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(),
							"concatenates onto %s in map iteration order; iterate sorted keys", obj.Name())
					}
				}
			}
		}
		return true
	})
}

// declaredWithin reports whether obj is declared inside the range
// statement (loop variables and loop-local temporaries are
// order-scoped and fine to touch).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// sortedAfter reports whether, after the range statement and still
// inside the enclosing body, obj is passed to a sort/slices call —
// the collect-then-sort idiom.
func sortedAfter(info *types.Info, encl *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return !found
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return !found
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
