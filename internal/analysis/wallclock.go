package analysis

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package time entry points that read or wait
// on the host's wall clock. Pure time arithmetic (Duration math,
// Time.Sub on sim-derived stamps) stays legal.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// Wallclock forbids reading the host wall clock inside simulation
// packages: every timestamp must come from the sim.Engine clock so
// runs are byte-identical run-to-run and at every -workers count.
// Commands (cmd/, examples/) are exempt — they legitimately time the
// simulator itself — as are test files, which the loader never loads.
var Wallclock = &Analyzer{
	Name:      "wallclock",
	Doc:       "forbid time.Now/Since/After/NewTimer/... in simulation packages",
	NeedTypes: true,
	Scope:     func(p *Package) bool { return !p.IsCommand() },
	Run:       runWallclock,
}

func runWallclock(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if ok && isPkgFunc(fn, "time") && wallclockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the host wall clock; simulation time must come from the sim.Engine clock",
					fn.Name())
			}
			return true
		})
	}
}
