// Package predictor implements the output-length prediction model the
// paper adopts from µ-Serve (§3.3, Fig. 8): a multi-class classifier
// over five percentile bins [P0,P25), [P25,P50), [P50,P75), [P75,P99),
// [P99,∞) of historical output lengths. The paper fine-tunes BERT and
// feeds the [CLS] hidden state to a 2-layer head; here the prompt
// embedding is provided by the workload generator (see DESIGN.md) and
// the head is a multinomial logistic regression trained by SGD. The
// engine consumes only the predicted bin's mean length, exactly as in
// the paper.
package predictor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/workload"
)

// NumBins is the number of percentile classes.
const NumBins = 5

// binPercentiles are the right edges of the first four bins.
var binPercentiles = [NumBins - 1]float64{25, 50, 75, 99}

// Bins holds the percentile bin edges fitted on training data and the
// mean training output length per bin, which becomes the point estimate
// for a predicted class.
type Bins struct {
	// Edges are right-open boundaries: bin b covers
	// [Edges[b-1], Edges[b]) with Edges[-1]=0 and Edges[4]=+inf.
	Edges [NumBins - 1]int
	// Mean is the average training output length within each bin.
	Mean [NumBins]float64
}

// FitBins derives bin edges (P25/P50/P75/P99) and per-bin means from
// historical output lengths.
func FitBins(outputs []int) (Bins, error) {
	if len(outputs) < NumBins {
		return Bins{}, fmt.Errorf("predictor: %d samples are too few to fit bins", len(outputs))
	}
	sorted := append([]int(nil), outputs...)
	sort.Ints(sorted)
	var b Bins
	for i, p := range binPercentiles {
		b.Edges[i] = workload.PercentileInt(sorted, p)
	}
	// Guarantee strictly increasing edges even on degenerate data.
	for i := 1; i < len(b.Edges); i++ {
		if b.Edges[i] <= b.Edges[i-1] {
			b.Edges[i] = b.Edges[i-1] + 1
		}
	}
	var sum [NumBins]float64
	var cnt [NumBins]int
	for _, o := range outputs {
		k := b.BinOf(o)
		sum[k] += float64(o)
		cnt[k]++
	}
	for k := 0; k < NumBins; k++ {
		if cnt[k] > 0 {
			b.Mean[k] = sum[k] / float64(cnt[k])
		} else if k > 0 {
			b.Mean[k] = float64(b.Edges[k-1])
		}
	}
	return b, nil
}

// BinOf returns the bin index of an output length.
func (b Bins) BinOf(outputLen int) int {
	for i, e := range b.Edges {
		if outputLen < e {
			return i
		}
	}
	return NumBins - 1
}

// Classifier is a trained multinomial logistic regression over request
// features.
type Classifier struct {
	bins Bins
	dim  int
	// w is row-major [NumBins][dim+1] with the bias in the last column.
	w [][]float64
	// calib scales point estimates so that predicted totals match
	// actual totals on the training set. Without it, systematic
	// misclassification bias would not cancel within a batch and the
	// accumulated error (Fig. 14) would plateau instead of shrinking.
	calib float64
}

// TrainConfig controls SGD.
type TrainConfig struct {
	Epochs int
	LR     float64
	L2     float64
	Seed   int64
}

// DefaultTrainConfig matches the paper's "low overhead" regime: a few
// quick epochs on historical data.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LR: 0.15, L2: 1e-4, Seed: 1}
}

// Train fits bins and classifier on historical requests.
func Train(train []workload.Request, cfg TrainConfig) (*Classifier, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("predictor: empty training set")
	}
	outputs := make([]int, len(train))
	for i, r := range train {
		outputs[i] = r.OutputLen
	}
	bins, err := FitBins(outputs)
	if err != nil {
		return nil, err
	}
	dim := len(train[0].Features)
	c := &Classifier{bins: bins, dim: dim, w: make([][]float64, NumBins)}
	for k := range c.w {
		c.w[k] = make([]float64, dim+1)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	probs := make([]float64, NumBins)
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lr := cfg.LR / (1 + 0.1*float64(ep))
		for _, i := range idx {
			r := train[i]
			if len(r.Features) != dim {
				return nil, fmt.Errorf("predictor: feature dim %d != %d", len(r.Features), dim)
			}
			y := bins.BinOf(r.OutputLen)
			c.softmax(r.Features, probs)
			for k := 0; k < NumBins; k++ {
				g := probs[k]
				if k == y {
					g -= 1
				}
				wk := c.w[k]
				for d := 0; d < dim; d++ {
					wk[d] -= lr * (g*r.Features[d] + cfg.L2*wk[d])
				}
				wk[dim] -= lr * g
			}
		}
	}
	// Total-length bias correction on the training set.
	var predSum, actSum float64
	for _, r := range train {
		predSum += c.bins.Mean[c.PredictBin(r)]
		actSum += float64(r.OutputLen)
	}
	c.calib = 1
	if predSum > 0 {
		c.calib = actSum / predSum
		if c.calib < 0.5 {
			c.calib = 0.5
		}
		if c.calib > 2 {
			c.calib = 2
		}
	}
	return c, nil
}

// softmax fills out with class probabilities for features x.
func (c *Classifier) softmax(x []float64, out []float64) {
	max := math.Inf(-1)
	for k := 0; k < NumBins; k++ {
		s := c.w[k][c.dim]
		for d := 0; d < c.dim && d < len(x); d++ {
			s += c.w[k][d] * x[d]
		}
		out[k] = s
		if s > max {
			max = s
		}
	}
	var z float64
	for k := range out {
		out[k] = math.Exp(out[k] - max)
		z += out[k]
	}
	for k := range out {
		out[k] /= z
	}
}

// PredictBin returns the most likely bin for a request.
func (c *Classifier) PredictBin(r workload.Request) int {
	probs := make([]float64, NumBins)
	c.softmax(r.Features, probs)
	best := 0
	for k := 1; k < NumBins; k++ {
		if probs[k] > probs[best] {
			best = k
		}
	}
	return best
}

// PredictLen returns the point estimate of the request's output length:
// the mean training length of the predicted bin (paper §3.3),
// bias-corrected so batch totals are unbiased.
func (c *Classifier) PredictLen(r workload.Request) int {
	l := int(c.bins.Mean[c.PredictBin(r)] * c.calib)
	if l < 1 {
		l = 1
	}
	return l
}

// Bins exposes the fitted bins.
func (c *Classifier) Bins() Bins { return c.bins }

// Accuracy returns the fraction of requests whose bin is predicted
// exactly (the paper's single-request metric, §4.4.1).
func (c *Classifier) Accuracy(test []workload.Request) float64 {
	if len(test) == 0 {
		return 0
	}
	hit := 0
	for _, r := range test {
		if c.PredictBin(r) == c.bins.BinOf(r.OutputLen) {
			hit++
		}
	}
	return float64(hit) / float64(len(test))
}

// AccumulatedError reproduces the paper's Fig.-14 metric: partition the
// test set into groups of size groupSize, and average over groups the
// relative error between predicted and actual *total* output length.
// Over- and under-predictions cancel within a group, so the error
// shrinks as groups grow.
func (c *Classifier) AccumulatedError(test []workload.Request, groupSize int) float64 {
	if groupSize <= 0 || len(test) < groupSize {
		return math.NaN()
	}
	var errSum float64
	groups := 0
	for start := 0; start+groupSize <= len(test); start += groupSize {
		var pred, actual float64
		for _, r := range test[start : start+groupSize] {
			pred += float64(c.PredictLen(r))
			actual += float64(r.OutputLen)
		}
		if actual > 0 {
			errSum += math.Abs(pred-actual) / actual
			groups++
		}
	}
	if groups == 0 {
		return math.NaN()
	}
	return errSum / float64(groups)
}

// MajorityBaseline returns the accuracy of always predicting the most
// common training bin — the "random guessing" reference the paper's
// accuracies are compared against.
func MajorityBaseline(bins Bins, train, test []workload.Request) float64 {
	var cnt [NumBins]int
	for _, r := range train {
		cnt[bins.BinOf(r.OutputLen)]++
	}
	best := 0
	for k := 1; k < NumBins; k++ {
		if cnt[k] > cnt[best] {
			best = k
		}
	}
	hit := 0
	for _, r := range test {
		if bins.BinOf(r.OutputLen) == best {
			hit++
		}
	}
	if len(test) == 0 {
		return 0
	}
	return float64(hit) / float64(len(test))
}
