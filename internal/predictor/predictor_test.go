package predictor

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func trainedClassifier(t *testing.T, n int, seed int64) (*Classifier, []workload.Request, []workload.Request) {
	t.Helper()
	reqs := workload.MustGenerate(workload.DefaultConfig(n, seed))
	train, _, test, err := workload.Split(reqs, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c, train, test
}

func TestFitBinsEdgesOrderedAndMeansMonotone(t *testing.T) {
	outputs := make([]int, 1000)
	for i := range outputs {
		outputs[i] = i + 1
	}
	b, err := FitBins(outputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(b.Edges); i++ {
		if b.Edges[i] <= b.Edges[i-1] {
			t.Fatalf("edges not increasing: %v", b.Edges)
		}
	}
	for k := 1; k < NumBins; k++ {
		if b.Mean[k] <= b.Mean[k-1] {
			t.Fatalf("bin means not increasing: %v", b.Mean)
		}
	}
}

func TestFitBinsTooFewSamples(t *testing.T) {
	if _, err := FitBins([]int{1, 2}); err == nil {
		t.Error("fit on 2 samples accepted")
	}
}

func TestFitBinsDegenerateData(t *testing.T) {
	outputs := make([]int, 100) // all equal
	for i := range outputs {
		outputs[i] = 7
	}
	b, err := FitBins(outputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(b.Edges); i++ {
		if b.Edges[i] <= b.Edges[i-1] {
			t.Fatalf("degenerate edges not repaired: %v", b.Edges)
		}
	}
}

func TestBinOfCoversRange(t *testing.T) {
	b := Bins{Edges: [4]int{10, 20, 30, 40}}
	cases := map[int]int{0: 0, 9: 0, 10: 1, 19: 1, 25: 2, 35: 3, 40: 4, 1000: 4}
	for in, want := range cases {
		if got := b.BinOf(in); got != want {
			t.Errorf("BinOf(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
}

// Paper §4.4.1: single-request bin accuracy is ~0.52-0.58, clearly above
// the majority-class baseline but far from perfect.
func TestAccuracyInPaperRegime(t *testing.T) {
	c, train, test := trainedClassifier(t, 8000, 42)
	acc := c.Accuracy(test)
	base := MajorityBaseline(c.Bins(), train, test)
	if acc < 0.35 || acc > 0.80 {
		t.Errorf("accuracy = %.3f, want paper-like 0.35-0.80", acc)
	}
	if acc <= base+0.05 {
		t.Errorf("accuracy %.3f not clearly above majority baseline %.3f", acc, base)
	}
	t.Logf("accuracy=%.4f baseline=%.4f", acc, base)
}

// Paper Fig. 14: accumulated error decreases as the group grows and is
// small (a few percent) at 256 requests.
func TestAccumulatedErrorShrinksWithGroupSize(t *testing.T) {
	c, _, test := trainedClassifier(t, 12000, 7)
	prev := math.Inf(1)
	nonIncreasing := 0
	sizes := []int{2, 8, 32, 128, 512}
	errs := make([]float64, len(sizes))
	for i, g := range sizes {
		errs[i] = c.AccumulatedError(test, g)
	}
	for i, e := range errs {
		if math.IsNaN(e) {
			t.Fatalf("accumulated error NaN at group %d", sizes[i])
		}
		if e <= prev {
			nonIncreasing++
		}
		prev = e
	}
	if nonIncreasing < len(sizes)-1 {
		t.Errorf("accumulated error not broadly decreasing: %v", errs)
	}
	if errs[0] < errs[len(errs)-1] {
		t.Errorf("error at group 2 (%v) below error at 512 (%v)", errs[0], errs[len(errs)-1])
	}
	if last := errs[len(errs)-1]; last > 0.15 {
		t.Errorf("accumulated error at 512 = %.3f, want <= 0.15 (paper: 2.8-6.2%%)", last)
	}
	t.Logf("accumulated errors %v -> %v", sizes, errs)
}

func TestAccumulatedErrorEdgeCases(t *testing.T) {
	c, _, test := trainedClassifier(t, 2000, 3)
	if !math.IsNaN(c.AccumulatedError(test, 0)) {
		t.Error("group size 0 did not return NaN")
	}
	if !math.IsNaN(c.AccumulatedError(test[:1], 10)) {
		t.Error("undersized test set did not return NaN")
	}
}

func TestPredictLenPositiveAndCalibrated(t *testing.T) {
	c, _, test := trainedClassifier(t, 4000, 9)
	means := c.Bins().Mean
	for _, r := range test[:200] {
		l := c.PredictLen(r)
		if l < 1 {
			t.Fatalf("PredictLen = %d", l)
		}
		// Calibration scales bin means by a bounded factor.
		found := false
		for _, m := range means {
			if float64(l) >= m*0.5-1 && float64(l) <= m*2+1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("PredictLen %d not near any bin mean %v", l, means)
		}
	}
}

// Calibration removes systematic bias: over a large test set the total
// predicted length lands within a few percent of the actual total.
func TestCalibrationUnbiased(t *testing.T) {
	c, _, test := trainedClassifier(t, 12000, 9)
	var pred, actual float64
	for _, r := range test {
		pred += float64(c.PredictLen(r))
		actual += float64(r.OutputLen)
	}
	ratio := pred / actual
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("predicted/actual total = %.3f, want near 1 after calibration", ratio)
	}
}

func TestTrainDeterministic(t *testing.T) {
	reqs := workload.MustGenerate(workload.DefaultConfig(2000, 5))
	train, _, test, err := workload.Split(reqs, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range test {
		if c1.PredictBin(r) != c2.PredictBin(r) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestTrainRejectsDimMismatch(t *testing.T) {
	reqs := workload.MustGenerate(workload.DefaultConfig(100, 5))
	reqs[50].Features = reqs[50].Features[:3]
	if _, err := Train(reqs, DefaultTrainConfig()); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// The classifier must beat guessing because topics are observable in the
// features, but must stay imperfect because of within-topic noise —
// that head-room is what Approach 1 is designed to tolerate.
func TestPredictionImperfection(t *testing.T) {
	c, _, test := trainedClassifier(t, 8000, 21)
	if acc := c.Accuracy(test); acc > 0.95 {
		t.Errorf("accuracy %.3f implausibly high: workload noise miscalibrated", acc)
	}
}
