package predictor

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkTrain measures classifier fitting over a paper-scale
// historical split; the paper calls its predictor overhead negligible
// (< 0.16% of processing time), so training must stay cheap.
func BenchmarkTrain(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.MustGenerate(workload.DefaultConfig(5000, 1))
	train, _, _, err := workload.Split(reqs, 0.6, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(train, DefaultTrainConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictLen measures the per-request inference cost the
// engine pays at admission.
func BenchmarkPredictLen(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.MustGenerate(workload.DefaultConfig(4000, 1))
	train, _, test, err := workload.Split(reqs, 0.6, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Train(train, DefaultTrainConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.PredictLen(test[i%len(test)])
	}
}
