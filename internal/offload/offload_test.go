package offload

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/workload"
)

func testTrace(n int) []workload.Request {
	cfg := workload.DefaultConfig(n, 5)
	cfg.MaxInputLen = 511
	cfg.MaxOutputLen = 256
	return workload.MustGenerate(cfg)
}

// The comparator is offline-only: arrival-stamped traces must be
// rejected with a clear error, not silently drained as if everything
// arrived at t=0 (see the package comment for the rationale).
func TestRejectsArrivalStampedTraces(t *testing.T) {
	stamped := workload.StampArrivals(testTrace(20), workload.Poisson{Rate: 5}, 3)
	if _, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 2), stamped); err == nil {
		t.Fatal("arrival-stamped trace accepted by the offline-only comparator")
	}
	// The same trace without stamps (all arrivals zero) must run.
	if _, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 2), testTrace(20)); err != nil {
		t.Fatalf("unstamped trace rejected: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig(hw.L20, model.Qwen2_5_32B, 0)
	if _, err := Run(bad, testTrace(10)); err == nil {
		t.Error("0 GPUs accepted")
	}
	bad = DefaultConfig(hw.L20, model.Qwen2_5_32B, 2)
	bad.HostLinkGBps = 0
	if _, err := Run(bad, testTrace(10)); err == nil {
		t.Error("no host link accepted")
	}
}

// Offloading's selling point: a model larger than VRAM runs on a single
// GPU (32B on one 48 GB L20), which OOMs under every resident scheduler.
func TestOffloadRunsOversizedModel(t *testing.T) {
	res, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 1), testTrace(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidentFraction >= 1 {
		t.Errorf("resident fraction = %v, expected partial residency", res.ResidentFraction)
	}
	if res.Report.OutputThroughput() <= 0 {
		t.Errorf("throughput = %v", res.Report.OutputThroughput())
	}
	if res.StreamedBytesPerStep <= 0 {
		t.Error("no host streaming recorded for an oversized model")
	}
}

// Paper §2.2.2: root-complex contention destroys multi-GPU scaling —
// aggregate throughput grows far slower than GPU count.
func TestContentionKillsScaling(t *testing.T) {
	// Large enough that every instance runs full generations.
	reqs := testTrace(2048)
	r1, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 1), reqs)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	scaling := r4.Report.OutputThroughput() / r1.Report.OutputThroughput()
	if scaling > 2.0 {
		t.Errorf("4-GPU offload scaling = %.2fx, contention should cap it well below 4x", scaling)
	}
	if scaling < 0.5 {
		t.Errorf("4-GPU offload scaling = %.2fx, implausibly low", scaling)
	}
}

// When the model fits comfortably (13B on L20), weights are fully
// resident and only KV streams.
func TestResidentWeightsWhenModelFits(t *testing.T) {
	res, err := Run(DefaultConfig(hw.L20, model.Llama2_13B, 1), testTrace(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidentFraction != 1 {
		t.Errorf("resident fraction = %v, want 1 for a fitting model", res.ResidentFraction)
	}
}

// Offloading's GPU utilization must be poor: the compute units starve
// behind the host link.
func TestOffloadUtilizationPoor(t *testing.T) {
	res, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 4), testTrace(400))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MeanUtilization > 0.6 {
		t.Errorf("offload utilization = %v, expected host-link starvation", res.Report.MeanUtilization)
	}
}

func TestDeterministic(t *testing.T) {
	reqs := testTrace(150)
	a, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(hw.L20, model.Qwen2_5_32B, 2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Elapsed != b.Report.Elapsed {
		t.Error("offload run not deterministic")
	}
}
