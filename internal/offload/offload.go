// Package offload models the offloading approach of paper §2.2.2
// (FlexGen-style): each GPU runs an independent inference instance,
// holds as many weights as fit, and streams the remainder plus the KV
// cache from host memory every decode step. All GPUs share the single
// CPU root complex (paper Fig. 4), so concurrent instances divide the
// host-link bandwidth — the contention that makes offloading
// "infeasible for high-throughput LLM inference" on multi-GPU nodes.
//
// The paper motivates against this design rather than benchmarking it;
// we implement it as an additional comparator so the §2.2.2 argument is
// checkable (cmd/tdpipe -exp offload).
//
// The comparator is offline-only by design: the FlexGen generation
// schedule (prefill a whole batch, decode it to completion) has no
// admission point for open-loop arrivals, so honoring ArrivalTime
// would require a different scheduler, not a parameter. Rather than
// silently treating a stamped trace as if everything were present at
// t=0 — which would overstate offloading throughput against the
// arrival-aware baselines — Run rejects traces carrying arrival times
// with an explicit error. Strip the stamps (or generate the trace
// without an arrival process) to compare against the offline regime.
package offload

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// Config parameterizes an offloading deployment.
type Config struct {
	Node hw.Node
	Spec model.Spec
	// GPUs is the number of independent offloading instances sharing
	// the root complex (data parallel over requests).
	GPUs int
	// HostLinkGBps is the aggregate CPU root-complex bandwidth all
	// instances contend for.
	HostLinkGBps float64
	// HostMemGB bounds the host-side KV pool per instance.
	HostMemGB float64
	// BatchPerGPU is the decode batch each instance runs (offloading
	// systems use very large batches to amortize transfers).
	BatchPerGPU int
	// MemUtilization and ReserveGB mirror the other schedulers.
	MemUtilization float64
	ReserveGB      float64
}

// DefaultConfig returns a FlexGen-like setup on the node.
func DefaultConfig(node hw.Node, spec model.Spec, gpus int) Config {
	return Config{
		Node:           node,
		Spec:           spec,
		GPUs:           gpus,
		HostLinkGBps:   25, // PCIe 4.0 x16 root complex, effective
		HostMemGB:      512,
		BatchPerGPU:    512,
		MemUtilization: 0.90,
		ReserveGB:      3,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.GPUs <= 0:
		return fmt.Errorf("offload: GPUs = %d", c.GPUs)
	case c.HostLinkGBps <= 0 || c.HostMemGB <= 0 || c.BatchPerGPU <= 0:
		return fmt.Errorf("offload: non-positive host parameters")
	case c.MemUtilization <= 0 || c.MemUtilization > 1:
		return fmt.Errorf("offload: MemUtilization = %v", c.MemUtilization)
	}
	if err := c.Node.Validate(); err != nil {
		return err
	}
	return c.Spec.Validate()
}

// Result is an offloading run outcome.
type Result struct {
	Report metrics.Report
	// ResidentFraction is the share of weights held in GPU memory.
	ResidentFraction float64
	// StreamedBytesPerStep is host traffic per decode step per GPU.
	StreamedBytesPerStep float64
}

// Run executes the trace across the offloading instances. Requests are
// split round-robin; each instance processes its share in fixed-size
// generations (prefill the batch, then decode it to completion), the
// FlexGen schedule. Host-link contention assumes all instances stream
// concurrently, which they do in steady state.
func Run(cfg Config, reqs []workload.Request) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workload.HasArrivals(reqs) {
		return nil, fmt.Errorf("offload: trace carries arrival times, but the offload comparator is offline-only " +
			"(the FlexGen generation schedule cannot admit open-loop arrivals); strip the stamps to compare offline")
	}
	cm, err := costmodel.New(cfg.Node, cfg.Spec)
	if err != nil {
		return nil, err
	}
	usable := cfg.Node.GPU.MemBytes()*cfg.MemUtilization - cfg.ReserveGB*1e9
	if usable <= 0 {
		return nil, fmt.Errorf("offload: no usable GPU memory")
	}
	weights := cfg.Spec.WeightBytes()
	resident := usable * 0.85 // leave room for activations and staging buffers
	if resident > weights {
		resident = weights
	}
	streamedWeights := weights - resident

	// Host KV capacity bounds the per-instance batch.
	hostKVTokens := cfg.HostMemGB * 1e9 / cfg.Spec.KVBytesPerToken()

	// Split requests round-robin over instances.
	shards := make([][]workload.Request, cfg.GPUs)
	for i, r := range reqs {
		shards[i%cfg.GPUs] = append(shards[i%cfg.GPUs], r)
	}

	rep := metrics.Report{
		Scheduler: "Offload",
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.GPUs,
		Requests:  len(reqs),
	}
	var maxElapsed, busy float64
	var streamed float64
	for _, shard := range shards {
		elapsed, gpuBusy := runInstance(cfg, cm, shard, streamedWeights, hostKVTokens, &streamed)
		if elapsed > maxElapsed {
			maxElapsed = elapsed
		}
		busy += gpuBusy
		for _, r := range shard {
			rep.InputTokens += r.InputLen
			rep.OutputTokens += r.OutputLen
		}
	}
	rep.Elapsed = maxElapsed
	if maxElapsed > 0 {
		rep.MeanUtilization = busy / (float64(cfg.GPUs) * maxElapsed)
		rep.BubbleRatio = 1 - rep.MeanUtilization
	}
	return &Result{
		Report:               rep,
		ResidentFraction:     resident / weights,
		StreamedBytesPerStep: streamed,
	}, nil
}

// runInstance processes one instance's requests in generations and
// returns (elapsed seconds, GPU-busy seconds). Host-link streaming is
// priced by the shared transfer formula: the aggregate root-complex
// bandwidth divided among the GPUs contending for it.
func runInstance(cfg Config, cm *costmodel.Model, shard []workload.Request,
	streamedWeights, hostKVTokens float64, streamedOut *float64) (elapsed, busy float64) {
	spec := cfg.Spec
	for start := 0; start < len(shard); start += cfg.BatchPerGPU {
		end := start + cfg.BatchPerGPU
		if end > len(shard) {
			end = len(shard)
		}
		gen := shard[start:end]

		// Prefill the generation: weights stream once per pass.
		var lens []int
		maxOut := 0
		kvTokens := 0
		for _, r := range gen {
			lens = append(lens, r.InputLen)
			kvTokens += r.InputLen
			if r.OutputLen > maxOut {
				maxOut = r.OutputLen
			}
		}
		b := costmodel.NewPrefillBatch(lens)
		comp, _ := cm.TPPrefill(1, b)
		xfer := costmodel.TransferTime(streamedWeights, cfg.HostLinkGBps, cfg.GPUs, 0)
		step := comp
		if xfer > step {
			step = xfer
		}
		elapsed += step
		busy += comp

		// Decode steps: every live request advances one token; the
		// step streams the missing weights plus the batch's whole KV
		// (FlexGen keeps KV host-side).
		live := len(gen)
		for tok := 1; tok < maxOut && live > 0; tok++ {
			live = 0
			stepKV := 0
			for _, r := range gen {
				if r.OutputLen > tok {
					live++
					ctx := r.InputLen + tok
					stepKV += ctx
				}
			}
			if live == 0 {
				break
			}
			if float64(stepKV) > hostKVTokens {
				stepKV = int(hostKVTokens)
			}
			comp, _ := cm.TPDecode(1, live, stepKV)
			hostBytes := streamedWeights + float64(stepKV)*spec.KVBytesPerToken()
			xfer := costmodel.TransferTime(hostBytes, cfg.HostLinkGBps, cfg.GPUs, 0)
			step := comp
			if xfer > step {
				step = xfer
			}
			elapsed += step
			busy += comp
			*streamedOut = hostBytes
			kvTokens += live
		}
	}
	return elapsed, busy
}
