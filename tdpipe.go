// Package tdpipe is the public facade of the TD-Pipe reproduction: a
// temporally-disaggregated pipeline-parallelism engine for
// high-throughput offline LLM inference (Zhang et al., ICPP 2025),
// together with the simulated multi-GPU substrate it runs on and the
// four vLLM-style baselines it is evaluated against.
//
// The typical flow is:
//
//	trace := tdpipe.NewTrace(5000, 1)                  // ShareGPT-like requests
//	clf := tdpipe.TrainPredictor(trace.Train)          // output-length predictor
//	cfg := tdpipe.NewConfig(tdpipe.A100, tdpipe.Llama2_70B, 4)
//	cfg.Predictor = clf
//	res, err := tdpipe.Run(cfg, trace.Sample(5000))
//	fmt.Println(res.Report)
//
// Baselines run through RunBaseline, and the paper's full evaluation is
// reproduced by the cmd/tdpipe binary (see EXPERIMENTS.md).
package tdpipe

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/predictor"
	"repro/internal/workload"
)

// Re-exported hardware and model catalogs (paper Tables 1 and 2).
var (
	// L20 is the 4x NVIDIA L20 PCIe node.
	L20 = hw.L20
	// A100 is the 4x NVIDIA A100 PCIe node.
	A100 = hw.A100
	// Llama2_13B is Llama2-13B-chat.
	Llama2_13B = model.Llama2_13B
	// Qwen2_5_32B is Qwen2.5-32B-Instruct.
	Qwen2_5_32B = model.Qwen2_5_32B
	// Llama2_70B is Llama2-70B-chat.
	Llama2_70B = model.Llama2_70B
)

// Core aliases: the engine configuration and results.
type (
	// ArrivalProcess generates open-loop arrival times.
	ArrivalProcess = workload.ArrivalProcess
	// ArrivalConfig selects an arrival process by name (flag-friendly).
	ArrivalConfig = workload.ArrivalConfig
	// PrefixConfig describes shared-prefix trace structure (system
	// prompts, multi-turn conversations) for StampPrefixes.
	PrefixConfig = workload.PrefixConfig
	// SLO is a latency objective (TTFT/TPOT/E2E bounds) for goodput.
	SLO = metrics.SLO
	// LatencyDigest summarizes per-request latency percentiles.
	LatencyDigest = metrics.LatencyDigest
	// RequestRecord is one request's lifecycle timestamps.
	RequestRecord = metrics.RequestRecord
	// Node describes a multi-GPU server.
	Node = hw.Node
	// ModelSpec describes a transformer model.
	ModelSpec = model.Spec
	// Config parameterizes the TD-Pipe engine.
	Config = core.Config
	// Result is a TD-Pipe run outcome.
	Result = core.Result
	// Report summarizes any run.
	Report = metrics.Report
	// Request is one inference request.
	Request = workload.Request
	// Predictor estimates output lengths for the greedy prefill.
	Predictor = core.LenPredictor
	// BaselineMethod selects one of the paper's comparison systems.
	BaselineMethod = baselines.Method
	// BaselineResult is a baseline run outcome.
	BaselineResult = baselines.Result
)

// Baseline methods (paper §4.1).
const (
	TPSB = baselines.TPSB
	TPHB = baselines.TPHB
	PPSB = baselines.PPSB
	PPHB = baselines.PPHB
)

// Built-in arrival process kinds for ArrivalConfig.
const (
	ArrivalInstant = workload.ArrivalInstant
	ArrivalPoisson = workload.ArrivalPoisson
	ArrivalBursty  = workload.ArrivalBursty
	ArrivalDiurnal = workload.ArrivalDiurnal
)

// DefaultSLO returns the default serving objective used by the online
// experiments.
func DefaultSLO() SLO { return metrics.DefaultSLO() }

// StampArrivals returns a copy of reqs with open-loop arrival times
// drawn from the configured process. Engines admit a request only once
// virtual time reaches its arrival; unstamped traces (all arrivals at
// t=0) reproduce the offline-batch behavior exactly.
func StampArrivals(reqs []Request, cfg ArrivalConfig) ([]Request, error) {
	return cfg.Stamp(reqs)
}

// HasArrivals reports whether the trace is open-loop (any request
// arrives after t=0).
func HasArrivals(reqs []Request) bool { return workload.HasArrivals(reqs) }

// StampPrefixes returns a copy of reqs carrying shared-prefix
// structure: each request joins a prefix group whose leading tokens
// are shared, so engines can reuse resident KV and skip the cached
// prefill work. Composes with StampArrivals in either order; unstamped
// traces behave exactly as before.
func StampPrefixes(reqs []Request, cfg PrefixConfig) ([]Request, error) {
	return workload.StampPrefixes(reqs, cfg)
}

// HasPrefixes reports whether the trace carries shared-prefix
// structure.
func HasPrefixes(reqs []Request) bool { return workload.HasPrefixes(reqs) }

// NewConfig returns a paper-faithful TD-Pipe configuration for world
// GPUs of the node running the model. The default predictor is the
// oracle; install a trained classifier for realistic behaviour.
func NewConfig(node Node, spec ModelSpec, world int) Config {
	return core.DefaultConfig(node, spec, world)
}

// Run executes the trace under TD-Pipe in virtual time.
func Run(cfg Config, reqs []Request) (*Result, error) {
	return core.Run(cfg, reqs)
}

// Fleet aliases: the data-parallel multi-replica serving layer.
type (
	// FleetResult is the merged outcome of a multi-replica run.
	FleetResult = fleet.Result
	// FleetPolicy dispatches requests across replicas.
	FleetPolicy = fleet.Policy
	// FleetOptions parameterize policy construction (seed, predictor).
	FleetOptions = fleet.Options
	// DisaggConfig sizes the prefill and decode pools of a
	// disaggregated deployment (see RunDisagg).
	DisaggConfig = fleet.DisaggConfig
	// DisaggResult is the merged outcome of a disaggregated run,
	// including hand-off and KV-transfer accounting.
	DisaggResult = fleet.DisaggResult
)

// Built-in fleet dispatch policies.
const (
	FleetRoundRobin     = fleet.RoundRobin
	FleetRandom         = fleet.Random
	FleetLeastWork      = fleet.LeastWork
	FleetPredictedCost  = fleet.PredictedCost
	FleetPrefixAffinity = fleet.PrefixAffinity
	FleetDecodeAffinity = fleet.DecodeAffinity
)

// FleetWorkersAuto requests automatic simulation-worker selection for
// the parallel fleet runners: GOMAXPROCS workers on fleets of at least
// fleet.AutoWorkerThreshold replicas, sequential below that.
const FleetWorkersAuto = fleet.WorkersAuto

// FleetPolicies lists the registered dispatch policies.
func FleetPolicies() []string { return fleet.Names() }

// NewFleetPolicy builds a registered dispatch policy by name.
func NewFleetPolicy(name string, opts FleetOptions) (FleetPolicy, error) {
	return fleet.New(name, opts)
}

// RunFleet serves the trace on replicas data-parallel TD-Pipe engines
// under the named dispatch policy and merges the per-replica reports
// (including per-request latency records) into one fleet report.
//
// Closed-loop traces (every arrival at t=0) are pre-sharded and the
// replicas simulate concurrently, each on its own virtual-time
// substrate. Arrival-stamped traces (see StampArrivals) are served by
// the online router instead: all replicas share one virtual clock and
// each request is dispatched at its arrival instant using a live
// snapshot of per-replica outstanding work.
//
// The policy inherits cfg.Predictor (predicted-cost dispatch uses the
// same classifier as the greedy prefill) and a fixed seed, so results
// are deterministic for a given trace and config; use fleet.Run or
// fleet.RunOnline directly for custom policy instances or seeds.
func RunFleet(cfg Config, replicas int, policy string, reqs []Request) (*FleetResult, error) {
	return RunFleetWorkers(cfg, replicas, policy, reqs, 1)
}

// RunFleetWorkers is RunFleet with the online co-simulation sharded
// across the given number of worker goroutines (0 or 1 sequential,
// FleetWorkersAuto for automatic selection). Reports and records are
// byte-identical across worker counts; workers only change wall-clock
// time. Closed-loop traces ignore the worker count — their replicas
// already simulate concurrently.
func RunFleetWorkers(cfg Config, replicas int, policy string, reqs []Request, workers int) (*FleetResult, error) {
	p, err := fleet.New(policy, fleet.Options{Seed: 1, Predictor: cfg.Predictor})
	if err != nil {
		return nil, err
	}
	if workload.HasArrivals(reqs) {
		return fleet.RunOnlineWorkers(cfg, replicas, p, reqs, workers)
	}
	return fleet.Run(cfg, replicas, p, reqs)
}

// RunDisagg serves the trace on a phase-disaggregated fleet: dedicated
// prefill replicas hand each request's finished prefix KV to dedicated
// decode replicas over the node's modeled KV link (transfer time =
// blocks x block bytes / bandwidth + latency, overlapping decode-side
// queueing). Arrivals are dispatched least-work across the prefill
// pool; hand-offs land on the decode replica with the warmest resident
// KV, then the most free-KV headroom. All replicas share one virtual
// clock, so results are deterministic for a fixed trace and config.
// Compare against RunFleet on the same trace to measure what the split
// buys (TTFT tails under bursts) and costs (transfer time, decode
// slots). Set dc.Workers (FleetWorkersAuto for automatic selection) to
// shard the co-simulation across goroutines; results stay
// byte-identical across worker counts.
func RunDisagg(cfg Config, dc DisaggConfig, reqs []Request) (*DisaggResult, error) {
	return fleet.RunDisagg(cfg, dc, reqs)
}

// Policy aliases: the elastic autoscaler and the composable front-door
// serving policies (see RunFleetElastic).
type (
	// PolicyStack composes the front-door policies for an elastic fleet
	// run: token-bucket admission, retry backoff, per-replica circuit
	// breaking, priority preemption and the autoscaler. Every field is
	// optional; a nil or empty stack is inactive and takes the exact
	// RunFleet code path.
	PolicyStack = policy.Stack
	// AutoscalerConfig parameterizes the elastic autoscaler: replica
	// bounds, evaluation cadence, SLO targets and cooldowns.
	AutoscalerConfig = policy.AutoscalerConfig
	// BackoffConfig parameterizes seeded exponential retry backoff.
	BackoffConfig = policy.BackoffConfig
	// BreakerConfig parameterizes per-replica circuit breaking
	// (closed -> open -> half-open on TTFT SLO misses).
	BreakerConfig = policy.BreakerConfig
	// PreemptionConfig parameterizes priority preemption: high-tier
	// arrivals evict low-tier KV through the recompute path.
	PreemptionConfig = policy.PreemptionConfig
	// PriorityConfig stamps priority tiers on a trace (StampPriorities).
	PriorityConfig = workload.PriorityConfig
	// AutoscaleStats is the scaling accounting in Report.Autoscale.
	AutoscaleStats = metrics.AutoscaleStats
	// AdmissionStats is the front-door accounting in Report.Admission.
	AdmissionStats = metrics.AdmissionStats
)

// NewAutoscaler builds the elastic replica controller; cfg must
// validate. Leave AutoscalerConfig.ColdStart zero to let the fleet
// router charge the node's modeled weight-load time per scale-up.
func NewAutoscaler(cfg AutoscalerConfig) (*policy.Autoscaler, error) {
	return policy.NewAutoscaler(cfg)
}

// NewTokenBucket builds a token-bucket admission limiter: rate
// requests/s refill with the given burst capacity.
func NewTokenBucket(rate, burst float64) *policy.TokenBucket {
	return policy.NewTokenBucket(rate, burst)
}

// NewBackoff builds the seeded retry-delay schedule used for shed
// requests.
func NewBackoff(cfg BackoffConfig) *policy.Backoff { return policy.NewBackoff(cfg) }

// StampPriorities returns a copy of reqs carrying priority tiers (0 is
// most important). With a PolicyStack whose Preemption is set, tier-0
// arrivals evict lower tiers' KV under memory pressure; unstamped
// traces behave exactly as before.
func StampPriorities(reqs []Request, cfg PriorityConfig) ([]Request, error) {
	return workload.StampPriorities(reqs, cfg)
}

// HasPriorities reports whether the trace carries priority structure.
func HasPriorities(reqs []Request) bool { return workload.HasPriorities(reqs) }

// RunFleetElastic serves an arrival-stamped trace on the online fleet
// router with the policy stack attached: admission shedding and retry
// at the front door, breaker-aware routing, priority preemption, and
// mid-run scaling between the autoscaler's bounds (each scale-up pays
// the node's modeled weight-load cold start; Report.Autoscale carries
// the provisioned GPU-second bill). Every trace request ends exactly
// once finished or dropped, with drops accounted in Report.Admission.
// An inactive stack (nil or empty) takes the exact RunFleet code path.
func RunFleetElastic(cfg Config, replicas int, policy string, reqs []Request, stack *PolicyStack) (*FleetResult, error) {
	return RunFleetElasticWorkers(cfg, replicas, policy, reqs, stack, 1)
}

// RunFleetElasticWorkers is RunFleetElastic sharded across simulation
// workers (see RunFleetWorkers); policy runs too are byte-identical
// across worker counts.
func RunFleetElasticWorkers(cfg Config, replicas int, policyName string, reqs []Request, stack *PolicyStack, workers int) (*FleetResult, error) {
	p, err := fleet.New(policyName, fleet.Options{Seed: 1, Predictor: cfg.Predictor})
	if err != nil {
		return nil, err
	}
	return fleet.RunOnlineElasticWorkers(cfg, replicas, p, reqs, stack, workers)
}

// Fault-injection aliases: seeded failure plans for fleet runs.
type (
	// FaultConfig parameterizes a seeded fault plan: crash MTBF and
	// restart delay, straggler count and slowdown, KV-link impairment
	// windows, the periodic KV checkpoint cadence, and (with a Topology
	// and DomainMTBF) correlated rack/zone domain outages.
	FaultConfig = faults.Config
	// FaultPlan is a fully materialized, deterministic failure schedule
	// drawn from a FaultConfig seed.
	FaultPlan = faults.Plan
	// FaultStats is the recovery accounting attached to Report.Faults.
	FaultStats = metrics.FaultStats
	// Topology maps fleet replicas onto racks and zones; set it on a
	// FaultConfig (with DomainMTBF) to draw correlated domain outages
	// on top of the independent per-replica schedule.
	Topology = hw.Topology
	// DomainOutage is one materialized correlated failure event in
	// FaultPlan.Domains: a rack or zone losing power (members crash
	// together) or network (members serve but their KV links partition).
	DomainOutage = faults.DomainOutage
)

// Correlated-outage kinds for FaultConfig.DomainKind.
const (
	// DomainPower crashes every domain member together.
	DomainPower = faults.DomainPower
	// DomainNetwork partitions every member's KV links while the
	// members keep serving.
	DomainNetwork = faults.DomainNetwork
	// DomainMixed draws power or network per event.
	DomainMixed = faults.DomainMixed
)

// NewFaultPlan draws the deterministic failure schedule for a fleet of
// replicas: per-replica crash instants (each outage lasting downtime),
// straggler assignments and KV-link impairment windows. The same config
// and replica count always yield the same plan.
func NewFaultPlan(cfg FaultConfig, replicas int, downtime float64) (*FaultPlan, error) {
	return faults.NewPlan(cfg, replicas, downtime)
}

// FaultWeightReloadTime models the per-crash weight-reload cost: the
// time to pull the largest pipeline stage's weights back over the
// node's host link. Add it to the process restart delay to size a
// plan's downtime.
func FaultWeightReloadTime(node Node, spec ModelSpec, world int) float64 {
	return faults.WeightReloadTime(node, spec, world)
}

// RunFleetFaults serves an arrival-stamped trace on the online fleet
// router while executing the plan's failures: crashed replicas abort
// their in-flight requests, routing skips dead replicas, and aborted
// work is re-dispatched (recompute, or resumed from the latest periodic
// KV checkpoint when cfg.CheckpointInterval is set) under the plan's
// retry budget. Requests that exhaust it are dropped with a reason and
// accounted in Report.Faults; every trace request ends exactly once
// finished or dropped. An inactive plan (nil, or one scheduling no
// failures) takes the exact fault-free RunOnline code path.
func RunFleetFaults(cfg Config, replicas int, policy string, reqs []Request, plan *FaultPlan) (*FleetResult, error) {
	return RunFleetFaultsWorkers(cfg, replicas, policy, reqs, plan, 1)
}

// RunFleetFaultsWorkers is RunFleetFaults sharded across simulation
// workers (see RunFleetWorkers); fault runs too are byte-identical
// across worker counts.
func RunFleetFaultsWorkers(cfg Config, replicas int, policy string, reqs []Request, plan *FaultPlan, workers int) (*FleetResult, error) {
	p, err := fleet.New(policy, fleet.Options{Seed: 1, Predictor: cfg.Predictor})
	if err != nil {
		return nil, err
	}
	return fleet.RunOnlineFaultsWorkers(cfg, replicas, p, reqs, plan, workers)
}

// RunDisaggFaults is RunDisagg under a fault plan: pool replicas crash
// and recover as in RunFleetFaults (plan replica indices cover the
// prefill pool first, then decode), and the plan's KV-link windows
// stretch or cut the prefill-to-decode hand-off transfers. A nil or
// inactive plan takes the exact RunDisagg code path.
func RunDisaggFaults(cfg Config, dc DisaggConfig, reqs []Request, plan *FaultPlan) (*DisaggResult, error) {
	return fleet.RunDisaggFaults(cfg, dc, reqs, plan)
}

// NewBaselineConfig returns a vLLM-like configuration for one of the
// four baselines.
func NewBaselineConfig(node Node, spec ModelSpec, world int, m BaselineMethod) baselines.Config {
	return baselines.DefaultConfig(node, spec, world, m)
}

// RunBaseline executes the trace under a baseline scheduler.
func RunBaseline(cfg baselines.Config, reqs []Request) (*BaselineResult, error) {
	return baselines.Run(cfg, reqs)
}

// Trace bundles a generated corpus with its train/val/test split.
type Trace struct {
	All        []Request
	Train, Val []Request
	Test       []Request
}

// NewTrace generates a seeded ShareGPT-like corpus of n requests and
// splits it 60/20/20 as in the paper.
func NewTrace(n int, seed int64) (*Trace, error) {
	reqs, err := workload.Generate(workload.DefaultConfig(n, seed))
	if err != nil {
		return nil, err
	}
	tr, val, test, err := workload.Split(reqs, 0.6, 0.2)
	if err != nil {
		return nil, err
	}
	return &Trace{All: reqs, Train: tr, Val: val, Test: test}, nil
}

// Sample draws k requests (deterministically re-seeded from the trace)
// renumbered for direct use with Run.
func (t *Trace) Sample(k int, seed int64) []Request {
	return workload.Sample(t.All, k, seed)
}

// TrainPredictor fits the µ-Serve-style five-bin output-length
// classifier on historical requests.
func TrainPredictor(train []Request) (*predictor.Classifier, error) {
	return predictor.Train(train, predictor.DefaultTrainConfig())
}

// TraceConfig controls synthetic trace generation for custom workloads
// (prompt/output length distributions, topic structure, noise).
type TraceConfig = workload.Config

// DefaultTraceConfig returns ShareGPT-like generation settings.
func DefaultTraceConfig(n int, seed int64) TraceConfig {
	return workload.DefaultConfig(n, seed)
}

// GenerateTrace produces a deterministic trace from a custom config and
// splits it 60/20/20.
func GenerateTrace(cfg TraceConfig) (*Trace, error) {
	reqs, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	tr, val, test, err := workload.Split(reqs, 0.6, 0.2)
	if err != nil {
		return nil, err
	}
	return &Trace{All: reqs, Train: tr, Val: val, Test: test}, nil
}
