// Quickstart: run TD-Pipe on a simulated 4x A100 node serving
// Llama2-70B over a small ShareGPT-like trace, and print the resulting
// throughput report.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Build a ShareGPT-like corpus and train the output-length
	//    predictor on its 60% historical split.
	trace, err := tdpipe.NewTrace(4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Configure TD-Pipe: Llama2-70B pipelined across the four
	//    A100s of a PCIe node.
	cfg := tdpipe.NewConfig(tdpipe.A100, tdpipe.Llama2_70B, 4)
	cfg.Predictor = clf

	// 3. Run 1,000 requests to completion in virtual time.
	reqs := trace.Sample(1000, 42)
	res, err := tdpipe.Run(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Report)
	fmt.Printf("output throughput: %.0f tokens/s\n", res.Report.OutputThroughput())
	fmt.Printf("GPU utilization:   %.1f%%\n", 100*res.Report.MeanUtilization)
	fmt.Printf("phase switches:    %d\n", res.Report.PhaseSwitches)
}
