// Capacity planner: before launching a job, check which node-model-GPU
// combinations fit at all and how many tokens of KV cache each leaves —
// the quantity that determines decode batch sizes and therefore
// throughput (paper §2.2.1). Reproduces the OOM pattern of Figure 11.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "node\tmodel\tGPUs\tKV capacity\tresident requests*")
	for _, node := range hw.Nodes() {
		for _, spec := range model.Models() {
			for _, gpus := range []int{1, 2, 4} {
				cfg := core.DefaultConfig(node, spec, gpus)
				capTok, err := core.KVCapacityTokens(cfg)
				if err != nil {
					fmt.Fprintf(w, "%s\t%s\t%d\tOOM\t-\n", node.Name, spec.Name, gpus)
					continue
				}
				// Rough resident count at a typical 600-token footprint.
				fmt.Fprintf(w, "%s\t%s\t%d\t%d tokens\t~%d\n",
					node.Name, spec.Name, gpus, capTok, capTok/600)
			}
		}
	}
	w.Flush()
	fmt.Println("\n* at an average input+output footprint of 600 tokens per request")
}
