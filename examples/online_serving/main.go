// Online serving: open-loop Poisson traffic against a two-replica
// TD-Pipe fleet (each a simulated 4x A100 node running Llama2-70B).
// For every registered dispatch policy the offered load ramps up as a
// fraction of the fleet's calibrated capacity until the policy violates
// the SLO (goodput drops below 95%), showing each policy's maximum
// sustainable load and how the TTFT/E2E tails degrade on the way.
//
// Closed-loop (offline) runs answer "how fast can we drain a batch";
// this demo answers the production question: "how much traffic can we
// accept while still meeting the latency objective".
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		replicas    = 2
		sampleSize  = 1500
		goodputsBar = 0.95
	)

	// 1. Corpus, trained predictor, SLO.
	trace, err := tdpipe.NewTrace(20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tdpipe.NewConfig(tdpipe.A100, tdpipe.Llama2_70B, 4)
	cfg.Predictor = clf
	cfg.SLO = tdpipe.DefaultSLO()
	reqs := trace.Sample(sampleSize, 42)

	// 2. Calibrate fleet capacity: the closed-loop makespan of one
	// engine bounds its service rate; the fleet scales it by replicas.
	offline, err := tdpipe.Run(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}
	capacity := replicas * float64(sampleSize) / offline.Report.Elapsed
	fmt.Printf("calibrated fleet capacity ~%.2f req/s (%d replicas), slo %s\n\n",
		capacity, replicas, cfg.SLO)

	// 3. Ramp offered load per policy until the SLO gives way.
	for _, policy := range tdpipe.FleetPolicies() {
		fmt.Printf("policy %s:\n", policy)
		for _, frac := range []float64{0.6, 0.8, 0.9, 1.0, 1.1} {
			rate := frac * capacity
			stamped, err := tdpipe.StampArrivals(reqs, tdpipe.ArrivalConfig{
				Kind: tdpipe.ArrivalPoisson,
				Rate: rate,
				Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Arrival-stamped traces route online: one shared clock,
			// per-arrival dispatch on live load snapshots.
			res, err := tdpipe.RunFleet(cfg, replicas, policy, stamped)
			if err != nil {
				log.Fatal(err)
			}
			d := res.Report.Latency
			fmt.Printf("  %.2fx load (%5.2f req/s): ttft p99 %6.1fs, e2e p99 %6.1fs, goodput %5.1f%%\n",
				frac, rate, d.TTFTP99, d.E2EP99, 100*d.Goodput())
			if d.Goodput() < goodputsBar {
				fmt.Printf("  -> SLO violated at %.2fx; max sustainable load is below %.2f req/s\n",
					frac, rate)
				break
			}
		}
		fmt.Println()
	}
}
