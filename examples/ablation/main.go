// Ablation: sweep the knobs behind TD-Pipe's three approaches on one
// configuration, mirroring the paper's §4.4 study — fixed
// prefill-to-decode switch ratios vs. AI-based greedy prefill, work
// stealing on/off, and fixed decode-to-prefill finish ratios vs. the
// spatial-temporal intensity comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	node, spec, world := tdpipe.A100, tdpipe.Llama2_70B, 4

	trace, err := tdpipe.NewTrace(16000, 3)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}
	job := trace.Sample(3000, 11)

	run := func(mutate func(*tdpipe.Config)) float64 {
		cfg := tdpipe.NewConfig(node, spec, world)
		cfg.Predictor = clf
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := tdpipe.Run(cfg, job)
		if err != nil {
			log.Fatal(err)
		}
		return res.Report.OutputThroughput()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ablation\tsetting\ttokens/s")

	fmt.Println("Approach 1: prefill-to-decode switch (Fig. 13)")
	for _, ratio := range []float64{0.20, 0.50, 0.80, 0.95} {
		r := ratio
		fmt.Fprintf(w, "fixed KV ratio\t%.0f%%\t%.0f\n", 100*r,
			run(func(c *tdpipe.Config) { c.FixedPrefillSwitchRatio = r }))
	}
	fmt.Fprintf(w, "AI-based greedy prefill\tTD-Pipe\t%.0f\n", run(nil))
	w.Flush()

	fmt.Println("\nApproach 2: inter-batch work stealing (Fig. 15)")
	fmt.Fprintf(w, "stealing\two\t%.0f\n", run(func(c *tdpipe.Config) { c.DisableWorkStealing = true }))
	fmt.Fprintf(w, "stealing\twi\t%.0f\n", run(nil))
	w.Flush()

	fmt.Println("\nApproach 3: decode-to-prefill switch (Fig. 16)")
	for _, ratio := range []float64{0.80, 0.50, 0.20, 0.05} {
		r := ratio
		fmt.Fprintf(w, "fixed finish ratio\t%.0f%%\t%.0f\n", 100*r,
			run(func(c *tdpipe.Config) { c.FixedDecodeSwitchRatio = r }))
	}
	fmt.Fprintf(w, "intensity comparison\tTD-Pipe\t%.0f\n", run(nil))
	w.Flush()
}
