// Fleet: serve one 5,000-request trace on four data-parallel TD-Pipe
// replicas (each a simulated 4x A100 node running Llama2-70B) and
// compare the registered dispatch policies — round-robin, seeded
// random, least known work, and predicted-cost using the paper's
// output-length classifier.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Corpus, trained predictor, and a 5k evaluation sample.
	trace, err := tdpipe.NewTrace(20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tdpipe.NewConfig(tdpipe.A100, tdpipe.Llama2_70B, 4)
	cfg.Predictor = clf
	reqs := trace.Sample(5000, 42)

	// 2. One fleet run per registered dispatch policy.
	for _, policy := range tdpipe.FleetPolicies() {
		res, err := tdpipe.RunFleet(cfg, 4, policy, reqs)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.CheckConservation(len(reqs)); err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Report)
		for i, rr := range res.Replicas {
			fmt.Printf("  replica %d: %4d reqs, %7.1fs, util %.1f%%\n",
				i, rr.Report.Requests, rr.Report.Elapsed, 100*rr.Report.MeanUtilization)
		}
		fmt.Printf("  fleet throughput: %.0f tok/s out\n\n", res.Report.OutputThroughput())
	}
}
