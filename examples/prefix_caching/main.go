// Prefix caching: shared-prefix KV reuse end to end. A chat-style
// trace (64 conversations, multi-turn, long shared prefixes) is served
// by a four-replica TD-Pipe fleet at saturating open-loop load, three
// ways:
//
//  1. no cache     — every request prefills its full prompt,
//  2. round-robin  — sharing on, but each group's prefix is scattered
//     across all replicas, so every replica warms its own copy,
//  3. prefix-affinity — requests route to the replica already holding
//     their prefix, so the fleet prefills each conversation once.
//
// The interesting outputs are the prefix hit rate (fraction of prompt
// tokens served from resident KV instead of being prefilled) and the
// TTFT distribution: at saturation, prefill work the cache absorbs is
// queueing delay everyone else does not wait behind.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		replicas = 4
		sample   = 1200
	)

	trace, err := tdpipe.NewTrace(20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tdpipe.NewConfig(tdpipe.A100, tdpipe.Llama2_70B, 4)
	cfg.Predictor = clf
	cfg.SLO = tdpipe.DefaultSLO()

	// Chat-shaped workload: 64 conversations, prefixes growing over
	// turns, so later turns extend earlier turns' block chains.
	reqs, err := tdpipe.StampPrefixes(trace.Sample(sample, 42), tdpipe.PrefixConfig{
		Groups: 64, PrefixLen: 512, Turns: 4, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d requests, %d conversations\n", sample, 64)

	// Calibrate saturating load from one engine's closed-loop rate.
	offline, err := tdpipe.Run(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}
	rate := 1.2 * replicas * float64(sample) / offline.Report.Elapsed
	open, err := tdpipe.StampArrivals(reqs, tdpipe.ArrivalConfig{
		Kind: tdpipe.ArrivalPoisson, Rate: rate, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered load: %.1f req/s across %d replicas (1.2x capacity)\n\n", rate, replicas)

	show := func(label string, cfg tdpipe.Config, policy string) {
		res, err := tdpipe.RunFleet(cfg, replicas, policy, open)
		if err != nil {
			log.Fatal(err)
		}
		d := res.Report.Latency
		fmt.Printf("%-16s hit rate %5.1f%%  ttft mean %6.2fs p99 %6.2fs  goodput %5.1f%%\n",
			label, 100*res.Report.PrefixHitRate(), d.MeanTTFT, d.TTFTP99, 100*d.Goodput())
	}

	cold := cfg
	cold.DisablePrefixCache = true
	show("no cache", cold, tdpipe.FleetRoundRobin)
	show("round-robin", cfg, tdpipe.FleetRoundRobin)
	show("prefix-affinity", cfg, tdpipe.FleetPrefixAffinity)

	fmt.Println("\ncache-affinity routing turns shared prefixes into skipped")
	fmt.Println("prefill work exactly once per conversation, fleet-wide.")
}
