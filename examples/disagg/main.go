// Disaggregated serving: a bursty open-loop workload against a
// four-replica deployment, served two ways — colocated (every replica
// interleaves prefill and decode phases) and phase-disaggregated
// (dedicated prefill replicas migrate each request's finished prefix
// KV to dedicated decode replicas over the node's modeled hand-off
// link).
//
// A colocated TD-Pipe replica keeps its pipeline in one phase for long
// stretches, so a burst arriving mid-decode queues until the phase
// switches — that wait lands in the TTFT tail. The disaggregated split
// prefills arrivals immediately and pays instead with the KV transfer
// and fewer decode-side token slots; the demo prints both sides of the
// trade at the same offered load.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		replicas   = 4
		sampleSize = 1500
	)

	// 1. Corpus, trained predictor, SLO.
	trace, err := tdpipe.NewTrace(20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tdpipe.NewConfig(tdpipe.A100, tdpipe.Llama2_70B, 4)
	cfg.Predictor = clf
	cfg.SLO = tdpipe.DefaultSLO()
	reqs := trace.Sample(sampleSize, 42)

	// 2. Calibrate the fleet's service rate and stamp bursty (MMPP)
	// arrivals at saturation.
	offline, err := tdpipe.Run(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}
	rate := replicas * float64(sampleSize) / offline.Report.Elapsed
	open, err := tdpipe.StampArrivals(reqs, tdpipe.ArrivalConfig{
		Kind: tdpipe.ArrivalBursty, Rate: rate, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered load ~%.2f req/s (bursty), slo %s\n\n", rate, cfg.SLO)

	// 3. Colocated control: 4 replicas, least-work dispatch.
	colo, err := tdpipe.RunFleet(cfg, replicas, tdpipe.FleetLeastWork, open)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("colocated:   ", colo.Report)
	fmt.Println("             ", colo.Report.Latency)

	// 4. Disaggregated splits over the same 4 replicas.
	for _, dc := range []tdpipe.DisaggConfig{
		{PrefillReplicas: 2, DecodeReplicas: 2},
		{PrefillReplicas: 3, DecodeReplicas: 1},
	} {
		res, err := tdpipe.RunDisagg(cfg, dc, open)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%dP+%dD:       %v\n", dc.PrefillReplicas, dc.DecodeReplicas, res.Report)
		fmt.Println("             ", res.Report.Latency)
		fmt.Printf("              %d hand-offs (%d queued), %.1f GB KV migrated\n",
			res.Handoffs, res.QueuedHandoffs, res.TransferredBytes/1e9)
	}
}
