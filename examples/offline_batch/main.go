// Offline batch API: the paper's motivating scenario (§1) — a large
// batch of requests with no latency SLO, where throughput is the only
// objective. This example runs the same job under TD-Pipe and all four
// vLLM-style baselines on a 4x L20 node serving Qwen2.5-32B and prints
// the comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	node, spec, world := tdpipe.L20, tdpipe.Qwen2_5_32B, 4

	trace, err := tdpipe.NewTrace(20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}
	job := trace.Sample(4000, 7)

	fmt.Printf("offline batch job: %d requests on 4x %s + %s\n\n", len(job), node.GPU.Name, spec.Name)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheduler\ttokens/s\tutil\trelative")

	var tdThroughput float64
	report := func(name string, tput, util float64) {
		rel := "1.00x"
		if tdThroughput > 0 {
			rel = fmt.Sprintf("%.2fx", tput/tdThroughput)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.1f%%\t%s\n", name, tput, 100*util, rel)
	}

	cfg := tdpipe.NewConfig(node, spec, world)
	cfg.Predictor = clf
	res, err := tdpipe.Run(cfg, job)
	if err != nil {
		log.Fatal(err)
	}
	tdThroughput = res.Report.OutputThroughput()
	report("TD-Pipe", tdThroughput, res.Report.MeanUtilization)

	for _, m := range []tdpipe.BaselineMethod{tdpipe.TPSB, tdpipe.TPHB, tdpipe.PPSB, tdpipe.PPHB} {
		bres, err := tdpipe.RunBaseline(tdpipe.NewBaselineConfig(node, spec, world, m), job)
		if err != nil {
			log.Fatal(err)
		}
		report(bres.Report.Scheduler, bres.Report.OutputThroughput(), bres.Report.MeanUtilization)
	}
	w.Flush()
}
