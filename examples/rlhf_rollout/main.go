// RLHF rollout: the second offline scenario the paper motivates (§1,
// §2.2.1) — short, templated prompts that generate long continuations.
// The example builds that workload shape with a custom trace config,
// runs TD-Pipe on a 4x A100 node, and prints a per-window GPU
// utilization timeline alongside the throughput report.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// Rollout prompts are short (tens of tokens) and completions long:
	// shift the prompt distribution down and widen outputs.
	tc := tdpipe.DefaultTraceConfig(12000, 99)
	tc.InputLogMean = 3.6 // median prompt ~37 tokens
	tc.InputLogStd = 0.5
	tc.MaxOutputLen = 2048

	trace, err := tdpipe.GenerateTrace(tc)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := tdpipe.TrainPredictor(trace.Train)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tdpipe.NewConfig(tdpipe.A100, tdpipe.Llama2_70B, 4)
	cfg.Predictor = clf
	rollouts := trace.Sample(3000, 5)

	res, err := tdpipe.Run(cfg, rollouts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("RLHF rollout: %d prompts on 4x A100 + 70B\n", len(rollouts))
	fmt.Println(res.Report)

	// Utilization timeline, 40 windows across the run.
	window := res.Report.Elapsed / 40
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, p := range res.Rec.Timeline(window, res.Report.Elapsed) {
		g := int(p.Utilization * float64(len(glyphs)))
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		sb.WriteRune(glyphs[g])
	}
	fmt.Printf("utilization: %s\n", sb.String())
	fmt.Printf("mean %.1f%%, bubbles %.1f%%, %d phase switches\n",
		100*res.Report.MeanUtilization, 100*res.Report.BubbleRatio, res.Report.PhaseSwitches)
}
